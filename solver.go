package sof

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"sof/internal/baseline"
	"sof/internal/chain"
	"sof/internal/core"
	"sof/internal/sofexact"
)

// Solver is a long-lived embedding session over one Network. It owns the
// shared chain oracle whose Dijkstra-tree cache persists across requests:
// entries are keyed by the network's cost epoch, so a stream of requests
// under unchanged costs is answered from warm state, and SetLinkCost /
// SetVMCost invalidate lazily (only the trees the next request touches are
// recomputed) instead of dropping the whole cache.
//
// Create one Solver per network and reuse it for every request — online
// arrival loops, batch workloads, and dynamic reconfiguration all benefit
// from the shared cache. A Solver is safe for concurrent use: EmbedBatch
// and EmbedStream fan out over it, and concurrent Embed calls share the
// singleflight tree cache. Mutating costs concurrently with an in-flight
// embed is not synchronized (same as mutating the Network itself).
type Solver struct {
	net         *Network
	algo        Algorithm
	parallelism int
	vms         []NodeID
	exactBudget int
	admit       func(marginalCost float64) bool
	oracle      *chain.Oracle

	// Recovery state (see survivable.go). The registry only fills on
	// sessions built WithRecovery; fmu guards it against concurrent
	// embeds and sweeps.
	recovery      bool
	repairBudget  float64
	repairRetries int
	repairBackoff time.Duration
	fmu           sync.Mutex
	forests       map[*Forest]int64
	fseq          int64

	// capacity is the load ledger of a capacitated lifecycle session (see
	// lease.go); nil on sessions built without WithCapacity.
	capacity *capacityState
}

// ErrAdmissionRejected is the typed error carried by Result.Err (or
// returned by Embed) when the session's admission threshold rejects a
// request: the embedding was computed and found feasible, but its marginal
// cost exceeded what the caller is willing to pay. Callers distinguish it
// from infeasibility with errors.Is.
var ErrAdmissionRejected = errors.New("sof: embedding rejected by admission threshold")

// Option configures a Solver at construction time.
type Option func(*Solver)

// WithAlgorithm sets the session's default embedding algorithm
// (AlgorithmSOFDA when not given).
func WithAlgorithm(a Algorithm) Option {
	return func(s *Solver) { s.algo = a }
}

// WithParallelism bounds the session's worker width: GOMAXPROCS when
// <= 0, sequential when 1. A lone Embed spends the width on
// candidate-chain generation; EmbedBatch and EmbedStream spend it on
// concurrent requests (each embed then generates candidates sequentially),
// so the total concurrency stays at the configured width rather than its
// square.
func WithParallelism(n int) Option {
	return func(s *Solver) { s.parallelism = n }
}

// WithVMs restricts the candidate VM set for every embed of the session;
// the restriction is remembered by the returned forests, so dynamic
// operations (Join, InsertVNF, MigrateVM) never graft onto VMs outside it.
// No arguments (or an empty slice) means no restriction.
func WithVMs(vms ...NodeID) Option {
	return func(s *Solver) {
		if len(vms) == 0 {
			s.vms = nil
			return
		}
		s.vms = append([]NodeID(nil), vms...)
	}
}

// WithAdmissionThreshold installs an online admission-control hook on the
// session (Lukovszki & Schmid's request-stream model: reject requests
// whose marginal cost exceeds a competitive threshold instead of
// embedding everything). For every successful embedding, admit is called
// with the forest's marginal cost — its total embedding cost on the
// current network — and a false return rejects the request: the caller
// sees ErrAdmissionRejected (in Result.Err for EmbedStream/EmbedBatch)
// and no forest. Rejection has no side effects; embeds do not mutate the
// network, so a rejected request leaves the session exactly as it found
// it. The hook applies to every embed of the session; it may be called
// concurrently from the stream/batch worker pool, so it must be
// thread-safe. A nil admit admits everything.
func WithAdmissionThreshold(admit func(marginalCost float64) bool) Option {
	return func(s *Solver) { s.admit = admit }
}

// WithExactBranchBudget bounds AlgorithmExact's branch-and-bound tree
// (its internal default when <= 0). Sweeps use a small budget so points
// whose optimality cannot be proven quickly fail fast.
func WithExactBranchBudget(n int) Option {
	return func(s *Solver) { s.exactBudget = n }
}

// NewSolver opens an embedding session on net.
func NewSolver(net *Network, opts ...Option) *Solver {
	s := &Solver{net: net, algo: AlgorithmSOFDA}
	for _, o := range opts {
		o(s)
	}
	s.oracle = chain.NewOracle(net.g, chain.Options{})
	return s
}

// Network returns the network the session embeds on.
func (s *Solver) Network() *Network { return s.net }

// CacheStats is a snapshot of the session's cache counters: Misses counts
// Dijkstra computations and Hits tree queries answered from a
// current-epoch cache entry; ChainMisses counts k-stroll solves and
// ChainHits candidate-chain queries answered from the solved-chain memo.
type CacheStats = chain.CacheStats

// CacheStats reports the session oracle's hit/miss counters. Misses is
// the total number of Dijkstra computations the session has paid and
// ChainMisses the total number of k-stroll solves — the two quantities
// the warm-cache benchmarks compare; ChainHits/(ChainHits+ChainMisses)
// is the solved-chain cache hit rate.
func (s *Solver) CacheStats() CacheStats { return s.oracle.Stats() }

// Embed computes a service overlay forest for req with the session's
// default algorithm. The embedding aborts with ctx.Err() once ctx is done;
// for SOFDA and SOFDA-SS candidate-chain generation fans out across the
// session's parallelism, and AlgorithmExact observes cancellation at every
// branch-and-bound node expansion.
func (s *Solver) Embed(ctx context.Context, req Request) (*Forest, error) {
	return s.EmbedAlgorithm(ctx, req, s.algo)
}

// EmbedAlgorithm is Embed with a per-call algorithm override. The call
// still runs inside the session — the shortest-path cache is shared, so
// comparing algorithms on one network pays the Dijkstra work once.
func (s *Solver) EmbedAlgorithm(ctx context.Context, req Request, algo Algorithm) (*Forest, error) {
	return s.embed(ctx, req, algo, s.parallelism, true)
}

// embed runs one embedding with an explicit candidate-generation width
// (innerPar): the batch/stream fan-outs pass 1 so their request-level
// concurrency is the only pool, single embeds pass the session width.
// newLease gates the capacitated session's reservation: user-facing embeds
// pass true; the repair re-embed tier passes false, because the damaged
// forest already holds a (suspended) lease that resumes over the repaired
// shape — reserving again would double-charge the trackers.
func (s *Solver) embed(ctx context.Context, req Request, algo Algorithm, innerPar int, newLease bool) (*Forest, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	creq := core.Request{Sources: req.Sources, Dests: req.Destinations, ChainLen: req.ChainLength}
	copts := &core.Options{
		Parallelism: innerPar,
		VMs:         s.vms,
		Oracle:      s.oracle,
	}
	var (
		f   *core.Forest
		err error
	)
	switch algo {
	case AlgorithmSOFDA:
		f, err = core.SOFDACtx(ctx, s.net.g, creq, copts)
	case AlgorithmSOFDASS:
		if len(req.Sources) != 1 {
			return nil, errors.New("sof: SOFDA-SS requires exactly one source")
		}
		f, err = core.SOFDASSCtx(ctx, s.net.g, req.Sources[0], req.Destinations, req.ChainLength, copts)
	case AlgorithmENEMP:
		f, err = baseline.SolveCtx(ctx, s.net.g, creq, copts, baseline.KindENEMP)
	case AlgorithmEST:
		f, err = baseline.SolveCtx(ctx, s.net.g, creq, copts, baseline.KindEST)
	case AlgorithmST:
		f, err = baseline.SolveCtx(ctx, s.net.g, creq, copts, baseline.KindST)
	case AlgorithmExact:
		f, err = sofexact.SolveCtx(ctx, s.net.g, creq, &sofexact.Options{
			VMs:            s.vms,
			MaxBranchNodes: s.exactBudget,
		})
	default:
		return nil, fmt.Errorf("sof: unknown algorithm %q", algo)
	}
	if err != nil {
		return nil, err
	}
	if s.admit != nil && !s.admit(f.TotalCost()) {
		return nil, fmt.Errorf("%w (marginal cost %v)", ErrAdmissionRejected, f.TotalCost())
	}
	out := &Forest{
		f:      f,
		net:    s.net,
		req:    creq,
		oracle: s.oracle,
		vms:    s.vms,
		owner:  s,
	}
	if s.capacity != nil && newLease {
		// Adaptive admission, capacity reservation, lease creation — all or
		// nothing; a rejected request leaves the session untouched.
		if err := s.admitAndLease(out, req); err != nil {
			return nil, err
		}
	}
	if s.recovery {
		s.register(out)
	}
	return out, nil
}

// Result couples one request of a batch or stream with its outcome.
// Index is the request's position (slice index for EmbedBatch, arrival
// order for EmbedStream); exactly one of Forest and Err is non-nil.
type Result struct {
	Index  int
	Forest *Forest
	Err    error
}

// workers resolves the session's fan-out width for n queued requests.
func (s *Solver) workers(n int) int {
	par := s.parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if n > 0 && par > n {
		par = n
	}
	return par
}

// EmbedBatch embeds every request of the batch over the session's worker
// pool (Rost & Schmid's batch setting: the solver, not the caller, owns
// the fan-out). Results are returned in request order; per-request
// failures are recorded in Result.Err rather than aborting the batch. The
// only call-level error is context cancellation, which also marks every
// request that had not finished.
func (s *Solver) EmbedBatch(ctx context.Context, reqs []Request) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(reqs))
	for i := range results {
		results[i] = Result{Index: i}
	}
	if err := ctx.Err(); err != nil {
		for i := range results {
			results[i].Err = err
		}
		return results, err
	}
	if len(reqs) == 0 {
		return results, nil
	}
	par := s.workers(len(reqs))
	innerPar := s.parallelism
	if par > 1 {
		innerPar = 1 // request-level fan-out is the pool; see WithParallelism
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				f, err := s.embed(ctx, reqs[i], s.algo, innerPar, true)
				results[i] = Result{Index: i, Forest: f, Err: err}
			}
		}()
	}
	var cancelled error
feed:
	for i := range reqs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			cancelled = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if cancelled != nil {
		for i := range results {
			if results[i].Forest == nil && results[i].Err == nil {
				results[i].Err = cancelled
			}
		}
		return results, cancelled
	}
	return results, nil
}

// EmbedStream embeds requests as they arrive on reqs (the online setting
// of Section VIII-C and Lukovszki & Schmid's request-stream model),
// fanning them out over the session's worker pool. Each Result carries the
// arrival Index of its request; with parallelism > 1 results may be
// delivered out of arrival order. Every admitted request produces exactly
// one Result — cancellation stops admission, not delivery. The returned
// channel is closed once reqs is closed (or ctx is done) and every
// in-flight embed has finished; consumers must drain it until then (after
// cancellation at most parallelism results remain, each failing fast with
// ctx.Err()). Consumers that need strict arrival-order feedback between
// requests (e.g. load-aware re-pricing) should use WithParallelism(1) or
// call Embed directly.
func (s *Solver) EmbedStream(ctx context.Context, reqs <-chan Request) <-chan Result {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make(chan Result)
	type job struct {
		idx int
		req Request
	}
	jobs := make(chan job)
	par := s.workers(0)
	innerPar := s.parallelism
	if par > 1 {
		innerPar = 1 // request-level fan-out is the pool; see WithParallelism
	}
	var wg sync.WaitGroup
	wg.Add(par)
	for w := 0; w < par; w++ {
		go func() {
			defer wg.Done()
			for j := range jobs {
				f, err := s.embed(ctx, j.req, s.algo, innerPar, true)
				out <- Result{Index: j.idx, Forest: f, Err: err}
			}
		}()
	}
	go func() {
		defer close(jobs)
		idx := 0
		for {
			select {
			case req, ok := <-reqs:
				if !ok {
					return
				}
				select {
				case jobs <- job{idx: idx, req: req}:
					idx++
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}
