package sof

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"sof/internal/topology"
)

// solverTestRequests draws n random SoftLayer requests with a fixed seed.
func solverTestRequests(net *topology.Network, n int) []Request {
	rng := rand.New(rand.NewSource(7))
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{
			Sources:      net.RandomNodes(rng, 2+rng.Intn(3)),
			Destinations: net.RandomNodes(rng, 2+rng.Intn(3)),
			ChainLength:  2,
		}
	}
	return reqs
}

func TestSolverMatchesNetworkEmbed(t *testing.T) {
	net, s, d := buildLine(t)
	req := Request{Sources: []NodeID{s}, Destinations: []NodeID{d}, ChainLength: 2}
	solver := NewSolver(net)
	for _, algo := range []Algorithm{AlgorithmSOFDA, AlgorithmSOFDASS, AlgorithmENEMP, AlgorithmEST, AlgorithmST, AlgorithmExact} {
		want, err := net.Embed(req, algo)
		if err != nil {
			t.Fatalf("%s wrapper: %v", algo, err)
		}
		got, err := solver.EmbedAlgorithm(context.Background(), req, algo)
		if err != nil {
			t.Fatalf("%s solver: %v", algo, err)
		}
		if got.TotalCost() != want.TotalCost() {
			t.Errorf("%s: solver cost %v != wrapper cost %v", algo, got.TotalCost(), want.TotalCost())
		}
	}
	if _, err := solver.EmbedAlgorithm(context.Background(), req, "nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}

	// Wrapper compatibility: a non-nil empty VMs slice means "no candidate
	// VMs" (the embed must fail), not "no restriction".
	if _, err := net.EmbedContext(context.Background(), req, AlgorithmSOFDA,
		&EmbedOptions{VMs: []NodeID{}}); err == nil {
		t.Error("empty non-nil EmbedOptions.VMs embedded against all VMs")
	}
}

// TestSolverWarmCacheEpochInvalidation is the cost-epoch contract: embeds
// under unchanged costs pay zero additional Dijkstra computations, a
// genuine cost change invalidates (and the post-change result matches a
// fresh solve), and rewriting a cost to its current value keeps the cache
// warm.
func TestSolverWarmCacheEpochInvalidation(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 15, Seed: 3})
	snet := FromGraph(net.G)
	solver := NewSolver(snet, WithVMs(net.VMs...))
	rng := rand.New(rand.NewSource(3))
	req := Request{
		Sources:      net.RandomNodes(rng, 4),
		Destinations: net.RandomNodes(rng, 4),
		ChainLength:  2,
	}
	ctx := context.Background()

	first, err := solver.Embed(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	cold := solver.CacheStats()
	if cold.Misses == 0 {
		t.Fatal("cold embed performed no Dijkstra computations")
	}

	second, err := solver.Embed(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	warm := solver.CacheStats()
	if warm.Misses != cold.Misses {
		t.Errorf("unchanged-cost re-embed recomputed %d trees; cache entries did not survive",
			warm.Misses-cold.Misses)
	}
	if warm.Hits <= cold.Hits {
		t.Error("warm embed recorded no cache hits")
	}
	if second.TotalCost() != first.TotalCost() {
		t.Errorf("warm cost %v != cold cost %v", second.TotalCost(), first.TotalCost())
	}

	// Rewriting a cost to its current value must not advance the epoch.
	snet.SetLinkCost(0, net.G.EdgeCost(0))
	if _, err := solver.Embed(ctx, req); err != nil {
		t.Fatal(err)
	}
	if got := solver.CacheStats(); got.Misses != cold.Misses {
		t.Errorf("same-value SetLinkCost invalidated the cache (%d new misses)", got.Misses-cold.Misses)
	}

	// A real change invalidates: the next embed recomputes and matches a
	// fresh one-shot solve on the mutated network.
	snet.SetLinkCost(0, net.G.EdgeCost(0)*10+1)
	mutated, err := solver.Embed(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	after := solver.CacheStats()
	if after.Misses == cold.Misses {
		t.Error("cost change did not invalidate the cache")
	}
	fresh, err := snet.Embed(req, AlgorithmSOFDA)
	if err != nil {
		t.Fatal(err)
	}
	if mutated.TotalCost() != fresh.TotalCost() {
		t.Errorf("post-mutation session cost %v != fresh solve %v", mutated.TotalCost(), fresh.TotalCost())
	}
}

func TestSolverEmbedBatch(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 15, Seed: 5})
	solver := NewSolver(FromGraph(net.G), WithVMs(net.VMs...))
	reqs := solverTestRequests(net, 6)
	results, err := solver.EmbedBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results for %d requests", len(results), len(reqs))
	}
	single := NewSolver(FromGraph(net.G), WithVMs(net.VMs...))
	for i, r := range results {
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if r.Err != nil {
			t.Fatalf("request %d failed: %v", i, r.Err)
		}
		want, err := single.Embed(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Forest.TotalCost() != want.TotalCost() {
			t.Errorf("request %d: batch cost %v != individual cost %v", i, r.Forest.TotalCost(), want.TotalCost())
		}
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	results, err = solver.EmbedBatch(cancelled, reqs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch error = %v", err)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Errorf("request %d has no error after pre-cancelled batch", i)
		}
	}
}

// TestSolverEmbedStreamFewerDijkstras is the acceptance bar of the session
// API: a 50-request unchanged-cost stream through one Solver must perform
// strictly fewer Dijkstra computations than 50 independent Network.Embed
// calls. Network.Embed is by construction a one-shot Solver per call, so
// the independent side is counted through 50 fresh sessions (identical
// work) and cross-checked against actual Network.Embed costs.
func TestSolverEmbedStreamFewerDijkstras(t *testing.T) {
	const n = 50
	net := topology.SoftLayer(topology.Config{NumVMs: 15, Seed: 9})
	snet := FromGraph(net.G)
	reqs := solverTestRequests(net, n)

	var independent uint64
	costs := make([]float64, n)
	for i, req := range reqs {
		oneShot := NewSolver(snet, WithVMs(net.VMs...))
		f, err := oneShot.Embed(context.Background(), req)
		if err != nil {
			t.Fatalf("one-shot %d: %v", i, err)
		}
		costs[i] = f.TotalCost()
		independent += oneShot.CacheStats().Misses

		wrapper, err := snet.EmbedContext(context.Background(), req, AlgorithmSOFDA, &EmbedOptions{VMs: net.VMs})
		if err != nil {
			t.Fatalf("Network.Embed %d: %v", i, err)
		}
		if wrapper.TotalCost() != costs[i] {
			t.Fatalf("request %d: wrapper cost %v != one-shot session cost %v", i, wrapper.TotalCost(), costs[i])
		}
	}

	shared := NewSolver(snet, WithVMs(net.VMs...))
	in := make(chan Request)
	go func() {
		defer close(in)
		for _, r := range reqs {
			in <- r
		}
	}()
	got := 0
	for res := range shared.EmbedStream(context.Background(), in) {
		if res.Err != nil {
			t.Fatalf("stream request %d: %v", res.Index, res.Err)
		}
		if res.Forest.TotalCost() != costs[res.Index] {
			t.Errorf("stream request %d: cost %v != independent cost %v",
				res.Index, res.Forest.TotalCost(), costs[res.Index])
		}
		got++
	}
	if got != n {
		t.Fatalf("stream delivered %d results, want %d", got, n)
	}
	streamed := shared.CacheStats().Misses
	if streamed >= independent {
		t.Errorf("shared stream performed %d Dijkstras, independent embeds %d; want strictly fewer",
			streamed, independent)
	}
	t.Logf("Dijkstra computations: stream=%d independent=%d (%.1fx fewer)",
		streamed, independent, float64(independent)/float64(streamed))
}

func TestSolverEmbedStreamCancellation(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 15, Seed: 11})
	solver := NewSolver(FromGraph(net.G), WithVMs(net.VMs...))
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Request)
	out := solver.EmbedStream(ctx, in)
	reqs := solverTestRequests(net, 2)
	in <- reqs[0]
	<-out
	cancel()
	// The stream must terminate even though the input channel stays open.
	for range out {
	}
}

// TestSolverAdmissionThresholdStream drives EmbedStream through a
// rejecting admission threshold (Lukovszki & Schmid's online admission
// model): requests whose embed cost exceeds the caller's bound must come
// back as typed ErrAdmissionRejected results, cheap-enough requests must
// still embed, and a rejection must not perturb later embeds (no side
// effects on the network or session).
func TestSolverAdmissionThresholdStream(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 8, Seed: 3})
	snet := FromGraph(net.G)
	reqs := solverTestRequests(net, 12)

	// Reference costs from an unconstrained session.
	plain := NewSolver(snet, WithVMs(net.VMs...), WithParallelism(1))
	costs := make([]float64, len(reqs))
	for i, r := range reqs {
		f, err := plain.Embed(context.Background(), r)
		if err != nil {
			t.Fatalf("reference embed %d: %v", i, err)
		}
		costs[i] = f.TotalCost()
	}
	// A threshold between the cheapest and most expensive request splits
	// the stream into admitted and rejected halves.
	lo, hi := costs[0], costs[0]
	for _, c := range costs {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo == hi {
		t.Fatalf("degenerate workload: all requests cost %v", lo)
	}
	threshold := (lo + hi) / 2

	solver := NewSolver(snet, WithVMs(net.VMs...), WithParallelism(1),
		WithAdmissionThreshold(func(marginalCost float64) bool { return marginalCost <= threshold }))
	in := make(chan Request)
	go func() {
		defer close(in)
		for _, r := range reqs {
			in <- r
		}
	}()
	admitted, rejected := 0, 0
	for res := range solver.EmbedStream(context.Background(), in) {
		want := costs[res.Index] <= threshold
		switch {
		case res.Err == nil && res.Forest != nil:
			admitted++
			if !want {
				t.Errorf("request %d (cost %v) admitted past threshold %v", res.Index, costs[res.Index], threshold)
			}
			if res.Forest.TotalCost() != costs[res.Index] {
				t.Errorf("request %d: admitted cost %v != reference %v — a rejection perturbed the session",
					res.Index, res.Forest.TotalCost(), costs[res.Index])
			}
		case errors.Is(res.Err, ErrAdmissionRejected):
			rejected++
			if want {
				t.Errorf("request %d (cost %v) rejected under threshold %v", res.Index, costs[res.Index], threshold)
			}
		default:
			t.Errorf("request %d: unexpected result err=%v", res.Index, res.Err)
		}
	}
	if admitted == 0 || rejected == 0 {
		t.Fatalf("threshold did not split the stream: %d admitted, %d rejected", admitted, rejected)
	}
}

// TestForestJoinRespectsVMRestriction is the regression test for dynamic
// operations leaking outside the embed-time VM restriction: the cheapest
// join for d2 runs through the forbidden (and very cheap) VM w, and the
// forest must refuse it.
func TestForestJoinRespectsVMRestriction(t *testing.T) {
	b := NewNetworkBuilder()
	s := b.AddSwitch("s")
	v := b.AddVM("allowed", 1)
	w := b.AddVM("forbidden", 0.1)
	d1 := b.AddSwitch("d1")
	d2 := b.AddSwitch("d2")
	b.Link(s, v, 1)
	b.Link(v, d1, 1)
	// Tempting path to d2 through the forbidden VM...
	b.Link(s, w, 0.1)
	b.Link(w, d2, 0.1)
	// ...and expensive legitimate ones.
	b.Link(v, d2, 10)
	b.Link(d1, d2, 10)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	solver := NewSolver(net, WithVMs(v))
	f, err := solver.Embed(context.Background(), Request{
		Sources: []NodeID{s}, Destinations: []NodeID{d1}, ChainLength: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Join(d2); err != nil {
		t.Fatal(err)
	}
	for _, used := range f.UsedVMs() {
		if used == w {
			t.Fatal("join grafted onto a VM excluded by the embed-time restriction")
		}
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}

	// Sanity: without the restriction the cheap VM is exactly what the
	// join picks, so the test is actually exercising the guard.
	free, err := NewSolver(net).Embed(context.Background(), Request{
		Sources: []NodeID{s}, Destinations: []NodeID{d1}, ChainLength: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := free.Join(d2); err != nil {
		t.Fatal(err)
	}
	foundCheap := false
	for _, used := range free.UsedVMs() {
		if used == w {
			foundCheap = true
		}
	}
	if !foundCheap {
		t.Error("unrestricted join did not use the cheap VM; restriction scenario is vacuous")
	}
}

// TestSolverSolvedChainCacheWarmStream is the session-level contract for
// the solved-chain memo: replaying a request under unchanged costs embeds
// at the same cost without new k-stroll solves, the hit rate is visible
// through CacheStats, and SetLinkCost/SetVMCost invalidate it.
func TestSolverSolvedChainCacheWarmStream(t *testing.T) {
	net := topology.SoftLayer(topology.Config{NumVMs: 15, Seed: 9})
	snet := FromGraph(net.G)
	solver := NewSolver(snet, WithVMs(net.VMs...))
	rng := rand.New(rand.NewSource(9))
	req := Request{
		Sources:      net.RandomNodes(rng, 3),
		Destinations: net.RandomNodes(rng, 3),
		ChainLength:  2,
	}
	ctx := context.Background()

	first, err := solver.Embed(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	cold := solver.CacheStats()
	if cold.ChainMisses == 0 {
		t.Fatal("cold embed solved no chains")
	}

	second, err := solver.Embed(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	warm := solver.CacheStats()
	if warm.ChainMisses != cold.ChainMisses {
		t.Errorf("unchanged-cost re-embed re-solved %d chains", warm.ChainMisses-cold.ChainMisses)
	}
	if warm.ChainHits <= cold.ChainHits {
		t.Error("warm embed recorded no solved-chain hits")
	}
	if second.TotalCost() != first.TotalCost() {
		t.Errorf("warm cost %v != cold cost %v", second.TotalCost(), first.TotalCost())
	}

	// A VM-cost change invalidates the memo; the re-embed must match a
	// fresh session on the mutated network exactly.
	snet.SetVMCost(net.VMs[0], net.G.NodeCost(net.VMs[0])+7)
	mutated, err := solver.Embed(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	after := solver.CacheStats()
	if after.ChainMisses == warm.ChainMisses {
		t.Error("SetVMCost did not invalidate the solved-chain cache")
	}
	fresh, err := NewSolver(snet, WithVMs(net.VMs...)).Embed(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if mutated.TotalCost() != fresh.TotalCost() {
		t.Errorf("post-mutation cost %v != fresh session %v", mutated.TotalCost(), fresh.TotalCost())
	}

	// And a link-cost change does too.
	pre := solver.CacheStats().ChainMisses
	snet.SetLinkCost(0, net.G.EdgeCost(0)+3)
	if _, err := solver.Embed(ctx, req); err != nil {
		t.Fatal(err)
	}
	if solver.CacheStats().ChainMisses == pre {
		t.Error("SetLinkCost did not invalidate the solved-chain cache")
	}
}
