package sof

// Survivable embedding sessions: failure injection on the session's
// network, damage inspection, and a recovery sweep over the live forests.
//
// Failures are state on the network (copy-on-write snapshots in the graph
// layer), so injecting one is O(1) and bumps the cost epoch — every
// session cache over the network invalidates lazily, exactly as a cost
// change would. Recovery is two-tier: a fast path grafts each severed
// destination back at its cheapest live join point (bounded by the repair
// budget), and forests the fast path cannot fix are re-embedded from
// scratch through the owning session. Destinations for which no repair
// exists are surfaced with ErrUnrecoverable, never silently dropped.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"sof/internal/core"
)

// ErrUnrecoverable is wrapped into every per-destination error of a
// recovery sweep for which no repair exists: the destination node itself
// failed, or neither a graft nor a full re-embed can serve it under the
// current failure state. Callers test with errors.Is.
var ErrUnrecoverable = errors.New("sof: destination unrecoverable")

// WithRecovery enables forest tracking on the session: every forest the
// session embeds is registered (until Release) so FailLink/FailVM impact
// queries and RepairAll can sweep them. Off by default — an untracked
// session never retains forests, so long request streams that drop their
// results do not leak.
func WithRecovery() Option {
	return func(s *Solver) { s.recovery = true }
}

// WithRepairBudget caps the graft cost RepairAll accepts for any single
// destination on the fast path; a destination whose cheapest graft is
// dearer falls through to the full re-embed tier. Zero or negative (the
// default) means the fast path is unbounded and re-embed only runs when
// no graft exists at all.
func WithRepairBudget(budget float64) Option {
	return func(s *Solver) { s.repairBudget = budget }
}

// WithRepairRetry makes RepairAll re-attempt each failed graft up to
// retries extra times, sleeping backoff between attempts (a live network
// may restore elements mid-sweep). Defaults: no retries.
func WithRepairRetry(retries int, backoff time.Duration) Option {
	return func(s *Solver) {
		if retries > 0 {
			s.repairRetries = retries
		}
		if backoff > 0 {
			s.repairBackoff = backoff
		}
	}
}

// register tracks a freshly embedded forest in the recovery registry.
func (s *Solver) register(f *Forest) {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if s.forests == nil {
		s.forests = make(map[*Forest]int64)
	}
	s.fseq++
	s.forests[f] = s.fseq
}

// Release removes the forest from its session's recovery registry; the
// forest itself stays usable, it just stops being swept by RepairAll.
// Releasing an untracked forest is a no-op.
func (f *Forest) Release() {
	if f.owner == nil {
		return
	}
	f.owner.fmu.Lock()
	defer f.owner.fmu.Unlock()
	delete(f.owner.forests, f)
}

// LiveForests returns the tracked forests in embedding order. Only
// sessions built WithRecovery track forests.
func (s *Solver) LiveForests() []*Forest {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	out := make([]*Forest, 0, len(s.forests))
	for f := range s.forests {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return s.forests[out[i]] < s.forests[out[j]] })
	return out
}

// FailLink marks link e failed. The link is not removed: traversals treat
// it as infinitely expensive, restore is O(1), and the cost epoch advances
// so session caches invalidate lazily. Reports whether the state changed
// (failing a failed link is a no-op).
func (s *Solver) FailLink(e EdgeID) bool { return s.net.g.FailEdge(e) }

// FailVM marks VM v failed: no traversal enters it and no VNF may be
// placed or kept on it. Reports whether the state changed; a non-VM node
// is rejected (use FailLink for links — switch failures are modeled by
// failing their links).
func (s *Solver) FailVM(v NodeID) bool {
	if !s.net.g.IsVM(v) {
		return false
	}
	return s.net.g.FailNode(v)
}

// RestoreLink clears a link failure; reports whether the state changed.
func (s *Solver) RestoreLink(e EdgeID) bool { return s.net.g.RestoreEdge(e) }

// RestoreVM clears a VM failure; reports whether the state changed.
func (s *Solver) RestoreVM(v NodeID) bool { return s.net.g.RestoreNode(v) }

// RestoreAllFailures clears every failed element at once, returning how
// many links and VMs were restored.
func (s *Solver) RestoreAllFailures() (links, vms int) { return s.net.g.RestoreAll() }

// Damage summarizes the effect of the current failure state on one forest.
type Damage struct {
	// Orphans lists the severed destinations, sorted.
	Orphans []NodeID
	// LostVNFs counts VNF instances stranded in severed subtrees.
	LostVNFs int
}

// Broken reports whether any destination is severed.
func (d Damage) Broken() bool { return len(d.Orphans) > 0 }

// Damage reports which of the forest's destinations the current failure
// state severs. Read-only: the forest is not modified.
func (f *Forest) Damage() Damage {
	d := f.f.Damage()
	return Damage{Orphans: d.Orphans, LostVNFs: d.LostVNFs}
}

// PlanBackups pre-computes standby attach plans for the given critical
// destinations (all current destinations when none are given): each plan
// anchors off the destination's serving path, so a failure on that path
// usually leaves the backup valid and repair becomes a cheap replay
// instead of a fresh search. Returns how many plans were stored; the
// error joins the destinations that got none and is advisory.
func (f *Forest) PlanBackups(critical ...NodeID) (int, error) {
	if len(critical) == 0 {
		critical = f.f.Destinations()
	}
	return f.f.PlanBackups(f.oracle, f.candidateVMs(), critical)
}

// DestFailure records one destination a recovery sweep could not restore;
// Err wraps ErrUnrecoverable.
type DestFailure struct {
	Dest NodeID
	Err  error
}

// ForestRecovery is the per-forest outcome of a RepairAll sweep. The
// accounting identity Orphans == Reattached + len(Failed) always holds: a
// severed destination is restored or surfaced, never dropped.
type ForestRecovery struct {
	Forest *Forest
	// Orphans is how many destinations the failure severed.
	Orphans int
	// Reattached counts destinations restored by any tier; FastPath of
	// them by grafting (BackupHits of those by replaying a PlanBackups
	// plan), the rest by a full re-embed.
	Reattached int
	FastPath   int
	BackupHits int
	// Reembedded is true when the fast path was insufficient and the
	// forest was re-embedded from scratch through the session.
	Reembedded bool
	// CostDelta is the forest's cost after recovery minus before the
	// failure.
	CostDelta float64
	// Failed lists the destinations that remain unserved.
	Failed []DestFailure
}

// RecoveryReport aggregates one RepairAll sweep.
type RecoveryReport struct {
	// ForestsTouched is the blast radius: tracked forests with damage.
	ForestsTouched int
	// Forests holds the per-forest outcomes, in embedding order,
	// damaged forests only.
	Forests []ForestRecovery
	// Reattached, FastPath, BackupHits, Reembeds and CostDelta aggregate
	// the per-forest outcomes.
	Reattached int
	FastPath   int
	BackupHits int
	Reembeds   int
	CostDelta  float64
}

// Unrecoverable flattens the per-forest failures.
func (r *RecoveryReport) Unrecoverable() []DestFailure {
	var out []DestFailure
	for _, fr := range r.Forests {
		out = append(out, fr.Failed...)
	}
	return out
}

// RepairAll sweeps every tracked forest (in embedding order) and repairs
// the damage the current failure state inflicts. Per forest: severed
// subtrees are detached (freeing their VMs), each orphaned destination is
// re-attached at its cheapest live join point — backup plans first, then
// the graft search, within the session's repair budget and retry policy —
// and if orphans remain the whole forest is re-embedded from scratch
// through the session. Destinations that still cannot be served are
// reported per forest with errors wrapping ErrUnrecoverable, and the sweep
// error joins them; forests keep serving every destination that survived
// or was restored either way.
//
// The sweep stops early with ctx.Err() if ctx is cancelled between
// forests or during retry backoff.
func (s *Solver) RepairAll(ctx context.Context) (*RecoveryReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	report := &RecoveryReport{}
	var sweepErrs []error
	for _, f := range s.LiveForests() {
		if err := ctx.Err(); err != nil {
			return report, err
		}
		fr, err := s.repairForest(ctx, f)
		if err != nil {
			return report, err
		}
		if fr == nil {
			continue // undamaged
		}
		report.ForestsTouched++
		report.Forests = append(report.Forests, *fr)
		report.Reattached += fr.Reattached
		report.FastPath += fr.FastPath
		report.BackupHits += fr.BackupHits
		if fr.Reembedded {
			report.Reembeds++
		}
		report.CostDelta += fr.CostDelta
		for _, df := range fr.Failed {
			sweepErrs = append(sweepErrs, fmt.Errorf("forest dest %d: %w", df.Dest, df.Err))
		}
	}
	return report, errors.Join(sweepErrs...)
}

// repairForest recovers one forest; nil means it was undamaged.
func (s *Solver) repairForest(ctx context.Context, f *Forest) (*ForestRecovery, error) {
	if !f.f.Damage().Broken() {
		return nil, nil
	}
	before := f.TotalCost() // damage is non-structural: this is the pre-failure cost
	// On a capacitated session, take the forest's lease off the books while
	// its shape is in flux: the repair's route searches then price the
	// network without this forest's own footprint pinning saturation masks.
	// The deferred resume re-applies whatever shape the repair produced —
	// and is a no-op if the service departed mid-repair (exactly-once).
	if suspended, err := s.suspendLease(f); err != nil {
		return nil, fmt.Errorf("sof: suspending lease for repair: %w", err)
	} else if suspended {
		defer s.resumeLease(f)
	}
	fr := &ForestRecovery{Forest: f}
	rep, err := f.f.Repair(f.oracle, f.candidateVMs(), &core.RepairOptions{Budget: s.repairBudget})
	if err != nil {
		return nil, fmt.Errorf("sof: repair of forest: %w", err)
	}
	fr.Orphans = rep.Orphans
	fr.FastPath = rep.Reattached
	fr.BackupHits = rep.BackupHits
	pending := rep.Failed

	// Retry tier: re-attempt each failed graft, with backoff — on a live
	// network elements restore underneath us.
	for try := 0; try < s.repairRetries && len(pending) > 0; try++ {
		if err := sleepCtx(ctx, s.repairBackoff); err != nil {
			return fr, err
		}
		var still []core.RepairFailure
		for _, rf := range pending {
			if _, err := f.f.JoinWithBudget(f.oracle, f.candidateVMs(), rf.Dest, s.repairBudget); err != nil {
				still = append(still, core.RepairFailure{Dest: rf.Dest, Err: err})
				continue
			}
			fr.FastPath++
		}
		pending = still
	}

	// Re-embed tier: destinations whose node is alive but that no graft
	// could reach (or afford) get one full re-embed of the forest.
	var wantBack []NodeID
	for _, rf := range pending {
		if s.net.g.NodeFailed(rf.Dest) {
			fr.Failed = append(fr.Failed, DestFailure{
				Dest: rf.Dest,
				Err:  fmt.Errorf("destination node %d failed: %w", rf.Dest, ErrUnrecoverable),
			})
			continue
		}
		wantBack = append(wantBack, rf.Dest)
	}
	if len(wantBack) > 0 {
		dests := append(f.f.Destinations(), wantBack...)
		sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
		// newLease=false: the forest's own (suspended) lease resumes over
		// whatever shape comes back; a fresh reservation here would
		// double-charge the trackers.
		nf, err := s.embed(ctx, Request{
			Sources:      f.req.Sources,
			Destinations: dests,
			ChainLength:  f.req.ChainLen,
		}, s.algo, s.parallelism, false)
		if err != nil {
			for _, d := range wantBack {
				fr.Failed = append(fr.Failed, DestFailure{
					Dest: d,
					Err:  fmt.Errorf("graft and re-embed both failed (%v): %w", err, ErrUnrecoverable),
				})
			}
		} else {
			// Swap the embedded core forest in place: the caller's *Forest
			// keeps its identity, registry entry, and session state. The
			// scratch wrapper must leave the registry or the sweep would
			// track a forest nobody holds.
			nf.Release()
			f.f = nf.f
			f.req = nf.req
			fr.Reembedded = true
		}
	}
	fr.Reattached = fr.Orphans - len(fr.Failed)
	fr.CostDelta = f.TotalCost() - before
	return fr, nil
}

// sleepCtx sleeps d (no-op when d <= 0) unless ctx is done first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
