package sof

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"sof/internal/topology"
)

// buildSurvivable builds the two-route diamond used by the recovery tests:
// a cheap VM route and an expensive spare, plus a lateral edge between the
// destinations.
func buildSurvivable(t *testing.T) (net *Network, s, v1, v2, d1, d2 NodeID, cheap [3]EdgeID) {
	t.Helper()
	b := NewNetworkBuilder()
	s = b.AddSwitch("s")
	v1 = b.AddVM("v1", 1)
	v2 = b.AddVM("v2", 1)
	d1 = b.AddSwitch("d1")
	d2 = b.AddSwitch("d2")
	cheap[0] = b.Link(s, v1, 1)
	cheap[1] = b.Link(v1, d1, 2)
	cheap[2] = b.Link(v1, d2, 2)
	b.Link(s, v2, 5)
	b.Link(v2, d1, 5)
	b.Link(v2, d2, 5)
	b.Link(d1, d2, 3)
	var err error
	net, err = b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestSolverRecoveryFastPath(t *testing.T) {
	net, s, _, _, d1, d2, cheap := buildSurvivable(t)
	solver := NewSolver(net, WithRecovery())
	ctx := context.Background()
	f, err := solver.Embed(ctx, Request{Sources: []NodeID{s}, Destinations: []NodeID{d1, d2}, ChainLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !solver.FailLink(cheap[1]) {
		t.Fatal("FailLink reported no change")
	}
	if dmg := f.Damage(); len(dmg.Orphans) != 1 || dmg.Orphans[0] != d1 {
		t.Fatalf("Damage() = %+v, want orphan [%d]", dmg, d1)
	}
	rep, err := solver.RepairAll(ctx)
	if err != nil {
		t.Fatalf("RepairAll: %v", err)
	}
	if rep.ForestsTouched != 1 || rep.Reattached != 1 || rep.Reembeds != 0 {
		t.Fatalf("report = %+v, want one fast-path reattach", rep)
	}
	if rep.CostDelta <= 0 {
		t.Fatalf("CostDelta = %v, want positive (detour is dearer)", rep.CostDelta)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("repaired forest invalid: %v", err)
	}
	// Idempotent: a second sweep finds nothing to do.
	rep, err = solver.RepairAll(ctx)
	if err != nil || rep.ForestsTouched != 0 {
		t.Fatalf("second sweep: report %+v, err %v", rep, err)
	}
	// Failing a failed link again is a no-op; restore round-trips.
	if solver.FailLink(cheap[1]) {
		t.Fatal("re-failing a failed link reported a change")
	}
	if !solver.RestoreLink(cheap[1]) {
		t.Fatal("RestoreLink reported no change")
	}
}

func TestSolverRecoveryBackupPlans(t *testing.T) {
	net, s, _, _, d1, d2, cheap := buildSurvivable(t)
	solver := NewSolver(net, WithRecovery())
	ctx := context.Background()
	f, err := solver.Embed(ctx, Request{Sources: []NodeID{s}, Destinations: []NodeID{d1, d2}, ChainLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	planned, err := f.PlanBackups() // all destinations critical
	if err != nil || planned != 2 {
		t.Fatalf("PlanBackups: planned %d, err %v", planned, err)
	}
	solver.FailLink(cheap[1])
	rep, err := solver.RepairAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BackupHits != 1 || rep.Reattached != 1 {
		t.Fatalf("report = %+v, want one backup hit", rep)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolverFailVMAndReembed(t *testing.T) {
	net, s, v1, v2, d1, d2, _ := buildSurvivable(t)
	solver := NewSolver(net, WithRecovery(), WithRepairBudget(1e-9))
	ctx := context.Background()
	f, err := solver.Embed(ctx, Request{Sources: []NodeID{s}, Destinations: []NodeID{d1, d2}, ChainLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	if solver.FailVM(s) {
		t.Fatal("FailVM accepted a switch")
	}
	if !solver.FailVM(v1) {
		t.Fatal("FailVM reported no change")
	}
	// The graft budget is unpayable, so the sweep must take the re-embed
	// tier — and succeed through the spare VM.
	rep, err := solver.RepairAll(ctx)
	if err != nil {
		t.Fatalf("RepairAll: %v", err)
	}
	if rep.Reembeds != 1 || len(rep.Unrecoverable()) != 0 {
		t.Fatalf("report = %+v, want one re-embed", rep)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("re-embedded forest invalid: %v", err)
	}
	used := f.UsedVMs()
	if len(used) != 1 || used[0] != v2 {
		t.Fatalf("UsedVMs = %v, want [%d] (v1 is dead)", used, v2)
	}
	if !solver.RestoreVM(v1) {
		t.Fatal("RestoreVM reported no change")
	}
}

func TestSolverRecoveryUnrecoverable(t *testing.T) {
	net, s, _, _, d1, d2, _ := buildSurvivable(t)
	solver := NewSolver(net, WithRecovery())
	ctx := context.Background()
	f, err := solver.Embed(ctx, Request{Sources: []NodeID{s}, Destinations: []NodeID{d1, d2}, ChainLength: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Sever d1 completely: every incident link fails.
	g := net.Graph()
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(EdgeID(id))
		if e.U == d1 || e.V == d1 {
			solver.FailLink(EdgeID(id))
		}
	}
	rep, err := solver.RepairAll(ctx)
	if err == nil {
		t.Fatal("sweep over an unservable destination returned no error")
	}
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("sweep error = %v, want ErrUnrecoverable", err)
	}
	lost := rep.Unrecoverable()
	if len(lost) != 1 || lost[0].Dest != d1 || !errors.Is(lost[0].Err, ErrUnrecoverable) {
		t.Fatalf("Unrecoverable() = %+v, want [%d]", lost, d1)
	}
	// The healthy destination keeps its service.
	if err := f.Validate(); err != nil {
		t.Fatalf("surviving forest invalid: %v", err)
	}
	got := f.Destinations()
	if len(got) != 1 || got[0] != d2 {
		t.Fatalf("Destinations() = %v, want [%d]", got, d2)
	}
	// Restore everything: the destination is recoverable again.
	links, _ := solver.RestoreAllFailures()
	if links == 0 {
		t.Fatal("RestoreAllFailures restored nothing")
	}
	if _, err := f.Join(d1); err != nil {
		t.Fatalf("re-join after restore: %v", err)
	}
}

func TestLiveForestsAndRelease(t *testing.T) {
	net, s, _, _, d1, d2, _ := buildSurvivable(t)
	ctx := context.Background()
	req1 := Request{Sources: []NodeID{s}, Destinations: []NodeID{d1}, ChainLength: 1}
	req2 := Request{Sources: []NodeID{s}, Destinations: []NodeID{d2}, ChainLength: 1}

	// Without WithRecovery nothing is tracked (and Release is a no-op).
	plain := NewSolver(net)
	pf, err := plain.Embed(ctx, req1)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(plain.LiveForests()); n != 0 {
		t.Fatalf("untracked session holds %d forests", n)
	}
	pf.Release()

	solver := NewSolver(net, WithRecovery())
	f1, err := solver.Embed(ctx, req1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := solver.Embed(ctx, req2)
	if err != nil {
		t.Fatal(err)
	}
	live := solver.LiveForests()
	if len(live) != 2 || live[0] != f1 || live[1] != f2 {
		t.Fatalf("LiveForests = %v, want [f1 f2] in embedding order", live)
	}
	f1.Release()
	if live = solver.LiveForests(); len(live) != 1 || live[0] != f2 {
		t.Fatalf("after release: LiveForests = %v, want [f2]", live)
	}
	f1.Release() // double release is a no-op
}

// TestRepairVsArrivalInterleaving runs failure injection + recovery sweeps
// concurrently with a stream of arrivals on one session. Under -race this
// pins the copy-on-write failure snapshots and the registry locking; the
// invariant checked is that every sweep leaves each tracked forest either
// fully valid or with its losses surfaced as ErrUnrecoverable.
func TestRepairVsArrivalInterleaving(t *testing.T) {
	topo := topology.SoftLayer(topology.Config{NumVMs: 20, Seed: 17})
	net := FromGraph(topo.G)
	solver := NewSolver(net, WithRecovery(), WithVMs(topo.VMs...), WithParallelism(2))
	ctx := context.Background()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // arrivals
		defer wg.Done()
		rng := rand.New(rand.NewSource(29))
		for i := 0; i < 30; i++ {
			req := Request{
				Sources:      topo.RandomNodes(rng, 2),
				Destinations: topo.RandomNodes(rng, 3),
				ChainLength:  2,
			}
			if f, err := solver.Embed(ctx, req); err == nil && i%3 == 0 {
				f.Release() // churn the registry from this side too
			}
		}
	}()

	rng := rand.New(rand.NewSource(31))
	numEdges := topo.G.NumEdges()
	for round := 0; round < 15; round++ {
		e := EdgeID(rng.Intn(numEdges))
		solver.FailLink(e)
		rep, err := solver.RepairAll(ctx)
		if err != nil && !errors.Is(err, ErrUnrecoverable) {
			t.Errorf("round %d: sweep error: %v", round, err)
		}
		for _, fr := range rep.Forests {
			if verr := fr.Forest.Validate(); verr != nil {
				t.Errorf("round %d: repaired forest invalid: %v", round, verr)
			}
		}
		if round%4 == 3 {
			solver.RestoreLink(e)
		}
	}
	wg.Wait()

	// Final quiesce: with arrivals done, one more sweep settles everything
	// that can be served; survivors must validate.
	solver.RepairAll(ctx)
	for _, f := range solver.LiveForests() {
		if !f.Damage().Broken() {
			if err := f.Validate(); err != nil {
				t.Errorf("final state invalid: %v", err)
			}
		}
	}
}
